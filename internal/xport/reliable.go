package xport

import (
	"fmt"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// This file implements the protocol reliability layer: per-link sequence
// numbers, positive acknowledgements, timeout-driven retransmission with
// exponential backoff, and duplicate suppression on receive. Layered over a
// lossy transport (FaultyTransport) it restores exactly-once delivery, which
// is the property every ASVM request engine assumes: seq-matched protocol
// acks (invalidation, ownership transfer, page offer, pager) panic on
// duplicates, so suppression here must be airtight.
//
// Wire model: the sequence number rides in the fixed message header (STS
// messages are a 32-byte untyped block with room to spare), so frames add no
// payload bytes. Acks are header-only messages; they are never themselves
// acknowledged — a lost ack causes a retransmit, which the receiver
// suppresses as a duplicate and re-acks.

// ErrPeerDown is the typed verdict of retransmit exhaustion: the observing
// node has retried a frame MaxRetries times without an ack and declares the
// destination dead. It is delivered to the observer's registered down-handler
// (OnPeerDown); every in-flight frame toward the dead node then bounces back
// to its sender as a Nack so the protocol above can re-route or abort.
type ErrPeerDown struct {
	Node mesh.NodeID
}

func (e ErrPeerDown) Error() string {
	return fmt.Sprintf("xport: peer node %d is down (retransmit exhaustion)", e.Node)
}

// ReliableConfig tunes the retry/ack layer.
type ReliableConfig struct {
	// RTO is the first retransmit timeout; attempt k waits min(RTO<<k,
	// MaxRTO).
	RTO    time.Duration
	MaxRTO time.Duration
	// MaxRetries bounds retransmissions of one message; exceeding it means
	// the observer declares the destination down (ErrPeerDown) and every
	// pending frame toward it bounces back as a Nack. Deterministic chaos
	// plans with loss rates well below 1 never get close; only a genuinely
	// crashed peer exhausts the schedule.
	MaxRetries int
}

// DefaultReliableConfig returns timeouts sized for the simulated Paragon:
// an STS round trip is a few hundred microseconds, so 4 ms catches a loss
// quickly without retransmitting under ordinary queueing delay.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		RTO:        4 * time.Millisecond,
		MaxRTO:     64 * time.Millisecond,
		MaxRetries: 30,
	}
}

// withDefaults fills zero fields.
func (c ReliableConfig) withDefaults() ReliableConfig {
	d := DefaultReliableConfig()
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	return c
}

// relFrame wraps an application message with its per-link sequence number
// and both endpoints' incarnations at send time. A frame stamped with a
// stale destination incarnation (sent before the destination crashed) is
// dropped without acking, so its sender exhausts retransmits and re-routes
// via the Nack path rather than corrupting the reborn node's cold protocol
// state. A frame stamped with a stale source incarnation is a ghost — it
// was in flight when its sender died — and is likewise dropped: without
// this check a ghost re-seeds the receiver's (freshly reset) dedup window
// for the link, and the restarted sender's new stream gets ack'd-and-
// suppressed as duplicates when its sequence numbers collide, silently
// eating live messages.
type relFrame struct {
	Seq    uint64
	Inc    uint32 // destination's incarnation
	SrcInc uint32 // source's incarnation
	Msg    interface{}
}

// relAck acknowledges one received frame. Acks travel on a dedicated
// per-node channel (relAckProto), not the frame's own proto: many protocols
// are asymmetric (a pager client sends on the server's channel but listens
// only on its private reply channel), so the frame proto is not guaranteed
// to have a handler at the sender. Proto identifies the link being acked.
type relAck struct {
	Proto ProtoID
	Seq   uint64
}

// relAckProto is the reliability layer's own ack channel, registered for a
// node the first time it sends.
var relAckProto = RegisterProto("rel/ack")

// relLink identifies a directed (src, dst, proto) channel — three small
// integers, so the sequence/ack state maps hash and compare without
// touching a string.
type relLink struct {
	src, dst mesh.NodeID
	proto    ProtoID
}

// relObs identifies one node's view of another: src has (or has not)
// declared dst down.
type relObs struct {
	src, dst mesh.NodeID
}

// relPending is one unacknowledged message at the sender.
type relPending struct {
	payloadBytes int
	m            interface{}
	attempts     int
	inc          uint32
}

// relSendState is the sender side of one link.
type relSendState struct {
	nextSeq uint64
	pending map[uint64]*relPending
}

// relRecvState is the receiver side of one link: contig is the highest
// sequence number below which everything has been delivered; ahead holds
// out-of-order arrivals above it (bounded by the sender's in-flight window).
type relRecvState struct {
	contig uint64
	ahead  map[uint64]bool
}

// Reliable implements Transport over an unreliable inner transport.
type Reliable struct {
	inner Transport
	eng   *sim.Engine
	cfg   ReliableConfig

	send   map[relLink]*relSendState
	recv   map[relLink]*relRecvState
	ackReg map[mesh.NodeID]bool

	// Crash-stop state. epoch counts a node's incarnations (bumped at each
	// crash); gate drops all inbound delivery at a crashed node; down marks
	// (observer, peer) pairs where the observer has exhausted retransmits,
	// so later sends fast-fail without another 30-retry wait; onDown holds
	// each node's registered peer-down handler.
	epoch  map[mesh.NodeID]uint32
	gate   map[mesh.NodeID]bool
	down   map[relObs]bool
	onDown map[mesh.NodeID]func(ErrPeerDown)

	// Stats.
	Retransmits    uint64
	DupsSuppressed uint64
	AcksSent       uint64
	Nacks          uint64
	PeersDowned    uint64
	FastFails      uint64
	StaleDrops     uint64
	// DeliveredFlushed counts pending frames completed silently during a
	// bounce flush because the delivery record shows the destination already
	// received them — only their ack died with the peer.
	DeliveredFlushed uint64
}

// NewReliable layers reliability over inner.
func NewReliable(e *sim.Engine, inner Transport, cfg ReliableConfig) *Reliable {
	return &Reliable{
		inner: inner, eng: e, cfg: cfg.withDefaults(),
		send:   make(map[relLink]*relSendState),
		recv:   make(map[relLink]*relRecvState),
		ackReg: make(map[mesh.NodeID]bool),
		epoch:  make(map[mesh.NodeID]uint32),
		gate:   make(map[mesh.NodeID]bool),
		down:   make(map[relObs]bool),
		onDown: make(map[mesh.NodeID]func(ErrPeerDown)),
	}
}

// OnPeerDown registers n's peer-down handler: it runs once per peer the
// first time one of n's frames exhausts its retransmit schedule toward that
// peer, before the pending frames bounce back as Nacks.
func (r *Reliable) OnPeerDown(n mesh.NodeID, fn func(ErrPeerDown)) {
	r.onDown[n] = fn
}

// Inner returns the wrapped transport.
func (r *Reliable) Inner() Transport { return r.inner }

// Name implements Transport; the layer is name-transparent.
func (r *Reliable) Name() string { return r.inner.Name() }

// Register implements Transport: the inner registration decodes frames,
// acks them, suppresses duplicates, and hands fresh messages to h.
func (r *Reliable) Register(n mesh.NodeID, proto ProtoID, h Handler) {
	r.inner.Register(n, proto, func(src mesh.NodeID, m interface{}) {
		if r.gate[n] {
			return // n has crashed: inbound delivery stops dead
		}
		switch f := m.(type) {
		case relFrame:
			if f.Inc != r.epoch[n] || f.SrcInc != r.epoch[src] {
				// Stamped for a previous incarnation of an endpoint: either
				// sent before this node crashed (the sender exhausts its
				// retries and re-routes), or a ghost a dead sender left in
				// flight (nobody is waiting; under crash-stop it was lost).
				// No ack either way.
				r.StaleDrops++
				return
			}
			// Always ack — a duplicate means our previous ack was lost.
			// The sender registered its ack channel before sending.
			r.AcksSent++
			r.inner.Send(n, src, relAckProto, 0, relAck{Proto: proto, Seq: f.Seq})
			if r.markSeen(relLink{src, n, proto}, f.Seq) {
				r.DupsSuppressed++
				return
			}
			h(src, f.Msg)
		case Nack:
			// The inner transport bounced one of our frames: the
			// destination has no handler. Cancel the retransmit and pass
			// the unwrapped Nack up so the protocol can re-route.
			fr, ok := f.Msg.(relFrame)
			if !ok {
				// A bounced ack has no pending state and nobody to inform.
				return
			}
			if ss := r.send[relLink{n, f.Dst, proto}]; ss != nil {
				delete(ss.pending, fr.Seq)
			}
			r.Nacks++
			h(src, Nack{Dst: f.Dst, Proto: f.Proto, Msg: fr.Msg})
		default:
			// Not one of ours (a transport delivering unwrapped traffic);
			// pass through.
			h(src, m)
		}
	})
}

// Send implements Transport: frame, remember, transmit, arm the timer. A
// crashed sender's frames vanish; a sender that has already declared dst
// down gets an immediate loopback Nack instead of another 30-retry wait.
func (r *Reliable) Send(src, dst mesh.NodeID, proto ProtoID, payloadBytes int, m interface{}) {
	if r.gate[src] {
		return // a crashed node sends nothing
	}
	if r.down[relObs{src, dst}] {
		r.FastFails++
		r.inner.Send(src, src, proto, 0, Nack{Dst: dst, Proto: proto, Msg: relFrame{Msg: m}})
		return
	}
	if !r.ackReg[src] {
		r.ackReg[src] = true
		r.inner.Register(src, relAckProto, func(from mesh.NodeID, m interface{}) {
			if r.gate[src] {
				return
			}
			ack, ok := m.(relAck)
			if !ok {
				panic(fmt.Sprintf("xport: non-ack %T on %s", m, relAckProto))
			}
			if ss := r.send[relLink{src, from, ack.Proto}]; ss != nil {
				delete(ss.pending, ack.Seq)
			}
		})
	}
	link := relLink{src, dst, proto}
	ss := r.send[link]
	if ss == nil {
		ss = &relSendState{pending: make(map[uint64]*relPending)}
		r.send[link] = ss
	}
	ss.nextSeq++
	seq := ss.nextSeq
	inc := r.epoch[dst]
	pm := &relPending{payloadBytes: payloadBytes, m: m, inc: inc}
	ss.pending[seq] = pm
	r.inner.Send(src, dst, proto, payloadBytes,
		relFrame{Seq: seq, Inc: inc, SrcInc: r.epoch[src], Msg: m})
	r.armRetry(link, ss, seq, pm)
}

// RetryWait returns the backoff before the retransmit that follows `attempts`
// prior transmissions: min(RTO << attempts, MaxRTO), with shift overflow
// clamped to MaxRTO. Exposed so the schedule is pinned by a golden test —
// retuning it should be a visible diff, not a silent behavior change.
func (c ReliableConfig) RetryWait(attempts int) time.Duration {
	wait := c.RTO << uint(attempts)
	if wait > c.MaxRTO || wait <= 0 {
		wait = c.MaxRTO
	}
	return wait
}

// armRetry schedules the retransmit check for one in-flight message. The
// engine has no event cancellation: an acked message's timer fires as a
// no-op (the pending entry is gone).
func (r *Reliable) armRetry(link relLink, ss *relSendState, seq uint64, pm *relPending) {
	r.eng.Schedule(r.cfg.RetryWait(pm.attempts), func() {
		if ss.pending[seq] != pm {
			return // acked (or nacked) in the meantime
		}
		pm.attempts++
		if pm.attempts > r.cfg.MaxRetries {
			r.peerDown(link.src, link.dst)
			return
		}
		r.Retransmits++
		// A live sender's own incarnation never changes (its pendings are
		// cleared if it crashes), so stamping at retransmit time matches the
		// original send.
		r.inner.Send(link.src, link.dst, link.proto, pm.payloadBytes,
			relFrame{Seq: seq, Inc: pm.inc, SrcInc: r.epoch[link.src], Msg: pm.m})
		r.armRetry(link, ss, seq, pm)
	})
}

// peerDown is retransmit exhaustion: src declares dst down. The first
// declaration runs src's down-handler (so the protocol layer can scrub
// caches before the fallout arrives); then every pending src→dst frame —
// across all protocols, in deterministic (proto, seq) order — bounces back
// to src as a loopback Nack, exactly as if the inner transport had refused
// it, reusing the protocol's established re-route path.
func (r *Reliable) peerDown(src, dst mesh.NodeID) {
	obs := relObs{src, dst}
	if !r.down[obs] {
		r.down[obs] = true
		r.PeersDowned++
		if h := r.onDown[src]; h != nil {
			h(ErrPeerDown{Node: dst})
		}
	}
	r.bounceAll(src, dst, func(*relPending) bool { return true })
}

// MarkPeerDown lets the machine layer declare, at observer src, that dst is
// dead without waiting for retransmit exhaustion (a planned crash is known
// to the failure model immediately). Later src→dst sends fast-fail and the
// in-flight frames bounce now. Unlike retransmit exhaustion the caller
// drives the protocol scrub itself, so no down-handler fires and the
// PeersDowned stat (exhaustion verdicts) does not count it.
func (r *Reliable) MarkPeerDown(src, dst mesh.NodeID) {
	r.down[relObs{src, dst}] = true
	r.bounceAll(src, dst, func(*relPending) bool { return true })
}

// bounceAll flushes pending src→dst frames matching the filter as loopback
// Nacks, in sorted (proto, seq) order so recovery is schedule-independent.
//
// A Nack asserts "this message never arrived", so a frame the destination
// demonstrably delivered (it is in the link's receive record; only its ack
// is missing) must NOT bounce — the receiver acted on it, and replaying
// its content at the sender double-applies authority (a delivered
// ownership grant would be both counted lost with the crashed owner and
// "reclaimed" from the bounce). Such frames complete silently: acked by
// the delivery record.
func (r *Reliable) bounceAll(src, dst mesh.NodeID, match func(*relPending) bool) {
	var links []relLink
	for link := range r.send {
		if link.src == src && link.dst == dst {
			links = append(links, link)
		}
	}
	sortLinks(links)
	for _, link := range links {
		ss := r.send[link]
		var seqs []uint64
		for seq, pm := range ss.pending {
			if match(pm) {
				seqs = append(seqs, seq)
			}
		}
		sortSeqs(seqs)
		rs := r.recv[link]
		for _, seq := range seqs {
			pm := ss.pending[seq]
			delete(ss.pending, seq)
			if rs != nil && (seq <= rs.contig || rs.ahead[seq]) {
				r.DeliveredFlushed++
				continue
			}
			r.inner.Send(src, src, link.proto, 0,
				Nack{Dst: dst, Proto: link.proto, Msg: relFrame{Seq: seq, Inc: pm.inc, Msg: pm.m}})
		}
	}
}

// AbandonedSend is one frame a crashing node had sent but that was never
// delivered: its in-flight copies will be stale-dropped at the destination
// (source-incarnation check) and its retransmit schedule dies with the
// node, so the message is lost with certainty. The machine layer collects
// these before NodeCrashed wipes the send state and hands them to the
// failure model, so authority that died in transit (an ownership grant the
// sender already relinquished) is declared lost rather than leaked.
type AbandonedSend struct {
	Dst mesh.NodeID
	Msg interface{}
}

// AbandonedSends returns n's pending outbound frames that were never
// delivered, in deterministic (dst, proto, seq) order. A frame the
// destination has already received (only its ack is outstanding) is NOT
// abandoned — the receiver acted on it — and is excluded. Must be called
// before NodeCrashed(n).
func (r *Reliable) AbandonedSends(n mesh.NodeID) []AbandonedSend {
	var links []relLink
	for link, ss := range r.send {
		if link.src == n && len(ss.pending) > 0 {
			links = append(links, link)
		}
	}
	sortLinks(links)
	var out []AbandonedSend
	for _, link := range links {
		ss := r.send[link]
		var seqs []uint64
		for seq := range ss.pending {
			seqs = append(seqs, seq)
		}
		sortSeqs(seqs)
		rs := r.recv[link]
		for _, seq := range seqs {
			if rs != nil && (seq <= rs.contig || rs.ahead[seq]) {
				continue // delivered; only the ack is missing
			}
			out = append(out, AbandonedSend{Dst: link.dst, Msg: ss.pending[seq].m})
		}
	}
	return out
}

// NodeCrashed drops node n dead: its incarnation advances (pre-crash frames
// toward it become stale), inbound delivery gates shut, its own unacked
// sends are abandoned (the retry timers find empty pending maps and expire
// as no-ops — a crashed node's timers are cancelled), and every receiver's
// memory of n's sequence space is wiped so a restarted n starts clean at
// sequence 1. The links where n was the RECEIVER are kept frozen (inbound
// is gated, so they can't change): they are the failure detector's record
// of which survivor frames n delivered before dying, which bounceAll needs
// to avoid Nacking delivered frames. A restarted n gets them wiped in
// PeerRestarted.
func (r *Reliable) NodeCrashed(n mesh.NodeID) {
	r.epoch[n]++
	r.gate[n] = true
	for link, ss := range r.send {
		if link.src == n {
			clear(ss.pending)
			delete(r.send, link)
		}
	}
	for link := range r.recv {
		if link.src == n {
			delete(r.recv, link)
		}
	}
}

// PeerRestarted reopens a crashed node: the inbound gate lifts, down marks
// involving n are forgotten (both directions — n rejoins cold and its peers
// may talk to it again), and frames stamped for the dead incarnation bounce
// back to their senders immediately rather than grinding through 30 stale
// retransmits each. Frames sent during the downtime already carry the new
// incarnation and deliver via their normal retransmit schedule.
func (r *Reliable) PeerRestarted(n mesh.NodeID) {
	delete(r.gate, n)
	for obs := range r.down {
		if obs.src == n || obs.dst == n {
			delete(r.down, obs)
		}
	}
	cur := r.epoch[n]
	var srcs []mesh.NodeID
	seen := make(map[mesh.NodeID]bool)
	for link := range r.send {
		if link.dst == n && !seen[link.src] {
			seen[link.src] = true
			srcs = append(srcs, link.src)
		}
	}
	sortNodes(srcs)
	for _, src := range srcs {
		r.bounceAll(src, n, func(pm *relPending) bool { return pm.inc != cur })
	}
	// The reborn node's receive memory starts cold; the crash-time delivery
	// record (kept by NodeCrashed for bounceAll) has served its purpose.
	for link := range r.recv {
		if link.dst == n {
			delete(r.recv, link)
		}
	}
}

func sortLinks(links []relLink) {
	for i := 1; i < len(links); i++ {
		for j := i; j > 0 && lessLink(links[j], links[j-1]); j-- {
			links[j], links[j-1] = links[j-1], links[j]
		}
	}
}

func lessLink(a, b relLink) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	if a.dst != b.dst {
		return a.dst < b.dst
	}
	return a.proto < b.proto
}

func sortSeqs(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortNodes(s []mesh.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// markSeen records a received sequence number and reports whether it was
// already delivered. Memory is bounded: contiguously-delivered history
// collapses into the low-water mark.
func (r *Reliable) markSeen(link relLink, seq uint64) (dup bool) {
	rs := r.recv[link]
	if rs == nil {
		rs = &relRecvState{ahead: make(map[uint64]bool)}
		r.recv[link] = rs
	}
	if seq <= rs.contig || rs.ahead[seq] {
		return true
	}
	if seq == rs.contig+1 {
		rs.contig++
		for rs.ahead[rs.contig+1] {
			rs.contig++
			delete(rs.ahead, rs.contig)
		}
	} else {
		rs.ahead[seq] = true
	}
	return false
}

var _ Transport = (*Reliable)(nil)
