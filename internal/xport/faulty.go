package xport

import (
	"time"

	"asvm/internal/mesh"
	"asvm/internal/sim"
)

// This file implements deterministic fault injection: FaultyTransport wraps
// any Transport and drops, duplicates, or delays messages according to a
// FaultPlan. All randomness comes from one seeded sim.RNG consumed in engine
// event order, so a run is bit-for-bit reproducible for a fixed (plan, seed)
// and independent of how many experiment cells run in parallel.

// Rates are the fault probabilities of one directed link. A zero Rates value
// injects nothing.
type Rates struct {
	// Drop is the probability a message is silently lost (never reaches
	// the wire; the sender pays no cost — loss is modelled in the network).
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Delay is the probability a message is held back before entering the
	// transport, for a uniform extra latency in [DelayMin, DelayMax].
	Delay              float64
	DelayMin, DelayMax time.Duration
}

// active reports whether these rates can ever inject a fault.
func (r Rates) active() bool {
	return r.Drop > 0 || r.Dup > 0 || (r.Delay > 0 && r.DelayMax > 0)
}

// Link is a directed (src, dst) node pair.
type Link struct {
	Src, Dst mesh.NodeID
}

// FaultPlan describes the faults to inject: Default applies to every link,
// Links overrides individual directed pairs. The zero plan is inactive: a
// FaultyTransport carrying it delegates every Send verbatim without drawing
// a single random number (the provable no-op the determinism tests rely on).
type FaultPlan struct {
	Default Rates
	Links   map[Link]Rates
}

// Active reports whether the plan can inject any fault at all.
func (p FaultPlan) Active() bool {
	if p.Default.active() {
		return true
	}
	for _, r := range p.Links {
		if r.active() {
			return true
		}
	}
	return false
}

// rates returns the effective rates for one directed link.
func (p FaultPlan) rates(src, dst mesh.NodeID) Rates {
	if r, ok := p.Links[Link{src, dst}]; ok {
		return r
	}
	return p.Default
}

// FaultyTransport wraps an inner Transport with FaultPlan-driven fault
// injection. Loopback messages (src == dst) are never faulted: local
// delivery does not cross the wire.
type FaultyTransport struct {
	inner Transport
	eng   *sim.Engine
	plan  FaultPlan
	rng   *sim.RNG

	// Stats.
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
}

// NewFaulty wraps inner with the given plan. rng must be dedicated to this
// transport (callers fork it from their seed).
func NewFaulty(e *sim.Engine, inner Transport, plan FaultPlan, rng *sim.RNG) *FaultyTransport {
	return &FaultyTransport{inner: inner, eng: e, plan: plan, rng: rng}
}

// Inner returns the wrapped transport.
func (t *FaultyTransport) Inner() Transport { return t.inner }

// Name implements Transport; the wrapper is cost-transparent and keeps the
// inner transport's name.
func (t *FaultyTransport) Name() string { return t.inner.Name() }

// Register implements Transport.
func (t *FaultyTransport) Register(n mesh.NodeID, proto ProtoID, h Handler) {
	t.inner.Register(n, proto, h)
}

// Send implements Transport: decide the message's fate, then delegate. Each
// configured fault class draws at most one random number, and none are drawn
// when its rate is zero, so inactive links behave exactly like the bare
// transport.
func (t *FaultyTransport) Send(src, dst mesh.NodeID, proto ProtoID, payloadBytes int, m interface{}) {
	r := t.plan.rates(src, dst)
	if src == dst || !r.active() {
		t.inner.Send(src, dst, proto, payloadBytes, m)
		return
	}
	if t.eng.Exploring() {
		t.sendChoose(src, dst, proto, payloadBytes, m, r)
		return
	}
	if r.Drop > 0 && t.rng.Float64() < r.Drop {
		t.Dropped++
		return
	}
	if r.Dup > 0 && t.rng.Float64() < r.Dup {
		t.Duplicated++
		t.inner.Send(src, dst, proto, payloadBytes, m)
	}
	if r.Delay > 0 && r.DelayMax > 0 && t.rng.Float64() < r.Delay {
		d := r.DelayMin
		if r.DelayMax > r.DelayMin {
			d += time.Duration(t.rng.Float64() * float64(r.DelayMax-r.DelayMin))
		}
		t.Delayed++
		t.eng.Schedule(d, func() {
			t.inner.Send(src, dst, proto, payloadBytes, m)
		})
		return
	}
	t.inner.Send(src, dst, proto, payloadBytes, m)
}

// sendChoose decides a fault-eligible message's fate under schedule
// exploration: instead of random draws, each configured fault class becomes
// one enumerable alternative of a single ChoiceFault point (0 always means
// "deliver normally", so the default schedule is fault-free). The delay
// alternative uses the plan's DelayMax deterministically — no RNG is
// consumed at all while exploring, keeping replay exact.
func (t *FaultyTransport) sendChoose(src, dst mesh.NodeID, proto ProtoID, payloadBytes int, m interface{}, r Rates) {
	// Fixed class order (drop, dup, delay) so a choice index always maps to
	// the same fate for a given plan.
	n := 1
	dropAt, dupAt, delayAt := -1, -1, -1
	if r.Drop > 0 {
		dropAt = n
		n++
	}
	if r.Dup > 0 {
		dupAt = n
		n++
	}
	if r.Delay > 0 && r.DelayMax > 0 {
		delayAt = n
		n++
	}
	switch k := t.eng.Choose(sim.ChoiceFault, n); k {
	case dropAt:
		t.Dropped++
	case dupAt:
		t.Duplicated++
		t.inner.Send(src, dst, proto, payloadBytes, m)
		t.inner.Send(src, dst, proto, payloadBytes, m)
	case delayAt:
		t.Delayed++
		t.eng.Schedule(r.DelayMax, func() {
			t.inner.Send(src, dst, proto, payloadBytes, m)
		})
	default:
		t.inner.Send(src, dst, proto, payloadBytes, m)
	}
}

var _ Transport = (*FaultyTransport)(nil)
