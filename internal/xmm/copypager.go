package xmm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// CopyPagerProto is the channel internal copy-pager traffic rides on.
// (Same NORMA transport, separate dispatch.)

// CopyPager is an XMM-internal pager serving an inherited memory region
// out of a *copy address space* on the source node (paper §2.3.3): a
// remote fault arrives by message, a kernel thread takes a page fault on
// the local copy map, and the resulting contents are shipped back. The
// thread blocks for the duration — across a copy chain this re-enters
// nodes and can exhaust the pool (the deadlock ASVM's asynchronous design
// eliminates).
type CopyPager struct {
	nd    *Node
	id    uint64
	task  *vm.Task
	entry *vm.Entry
}

// newCopyPager registers a copy pager for one entry of a copy address
// space.
func newCopyPager(nd *Node, copyTask *vm.Task, entry *vm.Entry) *CopyPager {
	nd.nextPager++
	// Pager IDs embed the source node so they are unique cluster-wide.
	id := uint64(nd.Self)<<32 | nd.nextPager
	cp := &CopyPager{nd: nd, id: id, task: copyTask, entry: entry}
	nd.copyPagers[cp.id] = cp
	return cp
}

func (cp *CopyPager) handleRequest(req copyReq) {
	cp.nd.Ctr.V[sim.CtrCopyPagerFaults]++
	cp.nd.Eng.Spawn(fmt.Sprintf("xmmcp%d", cp.id), func(p *sim.Proc) {
		cp.nd.CopyThreads.Acquire(p)
		defer cp.nd.CopyThreads.Release()
		addr := cp.entry.Start + vm.Addr(req.Idx-cp.entry.OffsetPages)*vm.PageSize
		pg, err := cp.task.Touch(p, addr, vm.ProtRead)
		if err != nil {
			panic(fmt.Sprintf("xmm: copy pager fault failed: %v", err))
		}
		reply := copyReply{PagerID: req.PagerID, Idx: req.Idx}
		payload := 0
		if pg.Data != nil {
			reply.Data = pg.Data
			payload = vm.PageSize
		} else {
			// Metadata-only run, or genuinely zero: either way the
			// requester zero-fills.
			reply.Zero = true
		}
		cp.nd.TR.Send(cp.nd.Self, req.Origin, Proto, payload, reply)
	})
}

// copyBinding is the remote-node memory manager for an inherited region: a
// thin client of the source node's CopyPager.
type copyBinding struct {
	nd      *Node
	o       *vm.Object
	pagerID uint64
	srcNode mesh.NodeID
}

// DataRequest implements vm.MemoryManager.
func (b *copyBinding) DataRequest(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	b.nd.Ctr.V[sim.CtrCopyRequests]++
	b.nd.TR.Send(b.nd.Self, b.srcNode, Proto, 0,
		copyReq{PagerID: b.pagerID, Idx: idx, Origin: b.nd.Self})
}

// DataUnlock implements vm.MemoryManager. Inherited objects are mapped
// needs-copy, so writes interpose shadows and never unlock here; grant
// defensively.
func (b *copyBinding) DataUnlock(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	b.nd.K.LockGrant(o, idx, desired)
}

// DataReturn implements vm.MemoryManager. Inherited pages are read-only
// snapshots refetchable from the source, so eviction just drops them.
func (b *copyBinding) DataReturn(o *vm.Object, idx vm.PageIdx, data []byte, dirty, kept bool) {
	if !kept {
		b.nd.K.RemovePage(o, idx)
	}
}

// Terminate implements vm.MemoryManager.
func (b *copyBinding) Terminate(o *vm.Object) {}

func (b *copyBinding) handleReply(msg copyReply) {
	if msg.Zero {
		b.nd.K.DataUnavailable(b.o, msg.Idx, vm.ProtRead)
		return
	}
	b.nd.K.DataSupply(b.o, msg.Idx, msg.Data, vm.ProtRead, false)
}

var _ vm.MemoryManager = (*copyBinding)(nil)

// RemoteFork creates a child task on dst inheriting parent's address space
// (on src) with NMK13 delayed-copy semantics: a local copy of the source
// address space plus an XMM-internal pager per inherited entry, and
// needs-copy mappings of the new remote objects in the child (paper
// §2.3.3).
func RemoteFork(parent *vm.Task, src, dst *Node, childName string) (*vm.Task, error) {
	if parent.Kernel != src.K {
		return nil, fmt.Errorf("xmm: parent task not on source node %d", src.Self)
	}
	copyMap := parent.Map.ForkLocal()
	copyTask := &vm.Task{Name: parent.Name + ".copy", Kernel: src.K, Map: copyMap}
	child := dst.K.NewTask(childName)
	for _, entry := range copyMap.Entries() {
		cp := newCopyPager(src, copyTask, entry)
		b := &copyBinding{nd: dst, pagerID: cp.id, srcNode: src.Self}
		objSize := entry.OffsetPages + entry.Pages()
		o := dst.K.NewObject(dst.K.NextID(), objSize, b, vm.CopyNone)
		b.o = o
		dst.copyObjs[cp.id] = b
		ce, err := child.Map.MapObject(entry.Start, o, entry.OffsetPages, entry.Pages(), entry.MaxProt, vm.InheritCopy)
		if err != nil {
			return nil, fmt.Errorf("xmm: remote fork mapping: %w", err)
		}
		// Writes in the child must not reach the frozen copy: evaluate
		// them through a shadow, like any delayed copy.
		ce.NeedsCopy = true
	}
	return child, nil
}
