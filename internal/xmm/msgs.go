package xmm

import (
	"asvm/internal/mesh"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// Proto is the transport channel XMM traffic rides on, interned once at
// package init.
var Proto = xport.RegisterProto("xmm")

// Wire message types. XMM speaks XMMI — an extension of EMMI — over
// NORMA-IPC, so each of these corresponds to a (heavyweight) typed IPC
// message.
type (
	// accessReq asks the centralized manager for page access
	// (memory_object_data_request / data_unlock forwarded by a proxy).
	accessReq struct {
		Obj    vm.ObjID
		Idx    vm.PageIdx
		Want   vm.Prot
		Origin mesh.NodeID
	}

	// supplyMsg grants access to the requesting node. NoData means the
	// requester already holds the contents (a read-to-write upgrade);
	// Fresh means no backing contents exist and the page may be
	// zero-filled.
	supplyMsg struct {
		Obj    vm.ObjID
		Idx    vm.PageIdx
		Data   []byte
		Lock   vm.Prot
		NoData bool
		Fresh  bool
	}

	// flushMsg tells a proxy to restrict (or flush, NewLock==ProtNone) a
	// page in its node's VM cache.
	flushMsg struct {
		Obj     vm.ObjID
		Idx     vm.PageIdx
		NewLock vm.Prot
		Seq     uint64
	}

	// flushAck answers flushMsg, carrying back dirty contents if any.
	flushAck struct {
		Obj     vm.ObjID
		Idx     vm.PageIdx
		Seq     uint64
		Present bool
		Dirty   bool
		Data    []byte
		From    mesh.NodeID
	}

	// evictMsg is a proxy-initiated data_return: the node is dropping the
	// page (clean) or paging it out (dirty).
	evictMsg struct {
		Obj   vm.ObjID
		Idx   vm.PageIdx
		Dirty bool
		Data  []byte
		From  mesh.NodeID
	}

	// evictAck lets the proxy free the frame.
	evictAck struct {
		Obj vm.ObjID
		Idx vm.PageIdx
	}

	// copyReq asks an XMM-internal copy pager for a page of an inherited
	// region (remote task creation, paper §2.3.3).
	copyReq struct {
		PagerID uint64
		Idx     vm.PageIdx
		Origin  mesh.NodeID
	}

	// copyReply supplies the page (or zero-fill permission).
	copyReply struct {
		PagerID uint64
		Idx     vm.PageIdx
		Data    []byte
		Zero    bool
	}
)

// Message kinds, protocol-scoped (see xport.MsgKind).
const (
	msgAccessReq xport.MsgKind = iota
	msgSupply
	msgFlush
	msgFlushAck
	msgEvict
	msgEvictAck
	msgCopyReq
	msgCopyReply
)

// The xport.Msg envelope: payload accounting comes from the message
// itself. A supply ships a page unless it is an upgrade (NoData) or a
// zero-fill permission (Fresh); flush acks and evictions ship contents
// only when dirty; a copy reply ships the page unless the requester may
// zero-fill.

func (accessReq) Kind() xport.MsgKind { return msgAccessReq }
func (accessReq) WireBytes() int      { return 0 }

func (supplyMsg) Kind() xport.MsgKind { return msgSupply }
func (s supplyMsg) WireBytes() int {
	if s.NoData || s.Fresh {
		return 0
	}
	return vm.PageSize
}

func (flushMsg) Kind() xport.MsgKind { return msgFlush }
func (flushMsg) WireBytes() int      { return 0 }

func (flushAck) Kind() xport.MsgKind { return msgFlushAck }
func (a flushAck) WireBytes() int {
	if a.Dirty {
		return vm.PageSize
	}
	return 0
}

func (evictMsg) Kind() xport.MsgKind { return msgEvict }
func (e evictMsg) WireBytes() int {
	if e.Dirty {
		return vm.PageSize
	}
	return 0
}

func (evictAck) Kind() xport.MsgKind { return msgEvictAck }
func (evictAck) WireBytes() int      { return 0 }

func (copyReq) Kind() xport.MsgKind { return msgCopyReq }
func (copyReq) WireBytes() int      { return 0 }

func (copyReply) Kind() xport.MsgKind { return msgCopyReply }
func (r copyReply) WireBytes() int {
	if r.Data != nil {
		return vm.PageSize
	}
	return 0
}
