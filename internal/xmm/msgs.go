package xmm

import (
	"asvm/internal/mesh"
	"asvm/internal/vm"
)

// Proto is the transport channel XMM traffic rides on.
const Proto = "xmm"

// Wire message types. XMM speaks XMMI — an extension of EMMI — over
// NORMA-IPC, so each of these corresponds to a (heavyweight) typed IPC
// message.
type (
	// accessReq asks the centralized manager for page access
	// (memory_object_data_request / data_unlock forwarded by a proxy).
	accessReq struct {
		Obj    vm.ObjID
		Idx    vm.PageIdx
		Want   vm.Prot
		Origin mesh.NodeID
	}

	// supplyMsg grants access to the requesting node. NoData means the
	// requester already holds the contents (a read-to-write upgrade);
	// Fresh means no backing contents exist and the page may be
	// zero-filled.
	supplyMsg struct {
		Obj    vm.ObjID
		Idx    vm.PageIdx
		Data   []byte
		Lock   vm.Prot
		NoData bool
		Fresh  bool
	}

	// flushMsg tells a proxy to restrict (or flush, NewLock==ProtNone) a
	// page in its node's VM cache.
	flushMsg struct {
		Obj     vm.ObjID
		Idx     vm.PageIdx
		NewLock vm.Prot
		Seq     uint64
	}

	// flushAck answers flushMsg, carrying back dirty contents if any.
	flushAck struct {
		Obj     vm.ObjID
		Idx     vm.PageIdx
		Seq     uint64
		Present bool
		Dirty   bool
		Data    []byte
		From    mesh.NodeID
	}

	// evictMsg is a proxy-initiated data_return: the node is dropping the
	// page (clean) or paging it out (dirty).
	evictMsg struct {
		Obj   vm.ObjID
		Idx   vm.PageIdx
		Dirty bool
		Data  []byte
		From  mesh.NodeID
	}

	// evictAck lets the proxy free the frame.
	evictAck struct {
		Obj vm.ObjID
		Idx vm.PageIdx
	}

	// copyReq asks an XMM-internal copy pager for a page of an inherited
	// region (remote task creation, paper §2.3.3).
	copyReq struct {
		PagerID uint64
		Idx     vm.PageIdx
		Origin  mesh.NodeID
	}

	// copyReply supplies the page (or zero-fill permission).
	copyReply struct {
		PagerID uint64
		Idx     vm.PageIdx
		Data    []byte
		Zero    bool
	}
)
