// Package xmm implements the NMK13 eXtended Memory Manager — the baseline
// the ASVM paper measures against. XMM interposes between each node's VM
// system and the external pager: one node runs the *centralized manager*
// holding all page state for a memory object; every other mapping node runs
// a forwarding *proxy*. All traffic rides NORMA-IPC.
//
// Deliberately modelled NMK13 behaviours (paper §2.3, §4.1):
//   - per-page state kept as a byte per page per mapping node at the
//     manager (the memory-consumption problem ASVM fixes);
//   - "create a coherent version at the pager, then forward": a dirty page
//     is written to paging space the first time another node requests it;
//   - sequentialized flush round trips before granting write access;
//   - delayed copy via local fork + XMM-internal copy pagers whose threads
//     block while resolving faults (the deadlock hazard on long chains).
package xmm

import (
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// Node is the per-node XMM runtime: it owns the node's managers, proxies
// and copy pagers and dispatches incoming XMM traffic to them.
type Node struct {
	Self mesh.NodeID
	Eng  *sim.Engine
	K    *vm.Kernel
	TR   xport.Transport

	// CopyThreads bounds the copy pagers' kernel threads on this node; an
	// exhausted pool on a cyclic copy chain deadlocks, which is exactly
	// the failure mode ASVM's asynchronous state transitions avoid.
	CopyThreads *sim.Semaphore

	managers   map[vm.ObjID]*Manager
	proxies    map[vm.ObjID]*Proxy
	copyPagers map[uint64]*CopyPager
	copyObjs   map[uint64]*copyBinding
	nextPager  uint64

	Ctr *sim.Counters
}

// NewNode creates the XMM runtime for one node and registers its transport
// handler.
func NewNode(eng *sim.Engine, k *vm.Kernel, tr xport.Transport, copyThreads int) *Node {
	n := &Node{
		Self: k.Node, Eng: eng, K: k, TR: tr,
		CopyThreads: sim.NewSemaphore(eng, copyThreads),
		managers:    make(map[vm.ObjID]*Manager),
		proxies:     make(map[vm.ObjID]*Proxy),
		copyPagers:  make(map[uint64]*CopyPager),
		copyObjs:    make(map[uint64]*copyBinding),
		Ctr:         sim.NewCounters(),
	}
	tr.Register(n.Self, Proto, n.handle)
	return n
}

func (n *Node) handle(src mesh.NodeID, m interface{}) {
	n.Ctr.V[sim.CtrMsgs]++
	env, ok := m.(xport.Msg)
	if !ok {
		panic(fmt.Sprintf("xmm: unknown message %T", m))
	}
	// Jump-table dispatch on the envelope's kind; each arm's concrete
	// assertion is unconditional (a mismatched Kind is a construction bug).
	switch env.Kind() {
	case msgAccessReq:
		msg := m.(accessReq)
		mgr := n.managers[msg.Obj]
		if mgr == nil {
			panic(fmt.Sprintf("xmm: node %d is not manager of %v", n.Self, msg.Obj))
		}
		mgr.handleRequest(msg)
	case msgSupply:
		msg := m.(supplyMsg)
		n.proxy(msg.Obj).handleSupply(msg)
	case msgFlush:
		msg := m.(flushMsg)
		n.proxy(msg.Obj).handleFlush(msg)
	case msgFlushAck:
		msg := m.(flushAck)
		n.managers[msg.Obj].handleFlushAck(msg)
	case msgEvict:
		msg := m.(evictMsg)
		n.managers[msg.Obj].handleEvict(msg)
	case msgEvictAck:
		msg := m.(evictAck)
		n.proxy(msg.Obj).handleEvictAck(msg)
	case msgCopyReq:
		msg := m.(copyReq)
		cp := n.copyPagers[msg.PagerID]
		if cp == nil {
			panic(fmt.Sprintf("xmm: no copy pager %d on node %d", msg.PagerID, n.Self))
		}
		cp.handleRequest(msg)
	case msgCopyReply:
		msg := m.(copyReply)
		n.copyObjs[msg.PagerID].handleReply(msg)
	default:
		panic(fmt.Sprintf("xmm: unknown message kind %d (%T)", env.Kind(), m))
	}
}

func (n *Node) proxy(id vm.ObjID) *Proxy {
	p := n.proxies[id]
	if p == nil {
		panic(fmt.Sprintf("xmm: no proxy for %v on node %d", id, n.Self))
	}
	return p
}

// Cluster-level setup ---------------------------------------------------------

// SetupShared creates an XMM-managed shared memory object across the given
// nodes. The manager lives on mgrIdx's node (by convention the first).
// pagerSrv may be nil for pure anonymous memory with no backing store
// (zero-fill only, no pageout). Returns the per-node vm objects, index
// aligned with nodes.
func SetupShared(id vm.ObjID, sizePages vm.PageIdx, nodes []*Node, mgrIdx int, pagerSrv *pager.Server) []*vm.Object {
	mgrNode := nodes[mgrIdx]
	mapping := make([]mesh.NodeID, len(nodes))
	for i, n := range nodes {
		mapping[i] = n.Self
	}
	var cli pager.PagerIO // nil interface, not a typed nil *Client
	if pagerSrv != nil {
		cli = pager.NewClient(mgrNode.Eng, mgrNode.TR, mgrNode.Self, pagerSrv)
	}
	mgr := newManager(mgrNode, id, sizePages, mapping, cli)
	mgrNode.managers[id] = mgr

	objs := make([]*vm.Object, len(nodes))
	for i, n := range nodes {
		px := &Proxy{nd: n, mgrNode: mgrNode.Self, obj: id}
		n.proxies[id] = px
		o := n.K.NewObject(id, sizePages, px, vm.CopyNone)
		px.o = o
		objs[i] = o
	}
	return objs
}

// SetManagerPager overrides a managed object's backing-store interface on
// its manager node — used to wire in a striped multi-pager file (§6).
func (n *Node) SetManagerPager(id vm.ObjID, io pager.PagerIO) {
	mgr := n.managers[id]
	if mgr == nil {
		panic(fmt.Sprintf("xmm: node %d does not manage %v", n.Self, id))
	}
	mgr.pagerCli = io
}

// Footprint returns the manager's non-pageable page-state memory in bytes
// for a shared object (the paper's 1 byte × pages × nodes), or 0 if this
// node does not manage it.
func (n *Node) Footprint(id vm.ObjID) int64 {
	if mgr, ok := n.managers[id]; ok {
		return int64(mgr.sizePages) * int64(len(mgr.mapping))
	}
	return 0
}

// Teardown removes a shared object from every node: proxies and the
// manager are dropped and local vm objects destroyed. The caller must have
// quiesced the object (no requests in flight).
func Teardown(id vm.ObjID, nodes []*Node) {
	for _, n := range nodes {
		if px := n.proxies[id]; px != nil {
			n.K.DestroyObject(px.o)
			delete(n.proxies, id)
		}
		delete(n.managers, id)
	}
}
