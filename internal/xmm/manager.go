package xmm

import (
	"asvm/internal/sim"
	"fmt"

	"asvm/internal/mesh"
	"asvm/internal/pager"
	"asvm/internal/vm"
)

const noNode = mesh.NodeID(-1)

// Manager is the centralized manager for one memory object: it owns all
// page state ("1 byte of non-pageable memory per page per node"), enforces
// single-writer/multiple-readers by creating a coherent version at the
// pager, and forwards requests to the pager.
type Manager struct {
	nd        *Node
	obj       vm.ObjID
	sizePages vm.PageIdx
	mapping   []mesh.NodeID
	pagerCli  pager.PagerIO

	// store is a zero-cost in-memory paging space used when no pager
	// client is configured (unit tests).
	store map[vm.PageIdx][]byte

	pages        map[vm.PageIdx]*mpage
	flushSeq     uint64
	pendingFlush map[uint64]func(flushAck)
}

// mpage is the manager's view of one page.
type mpage struct {
	writer  mesh.NodeID
	readers map[mesh.NodeID]bool
	busy    bool
	queue   []accessReq

	// evictWait resumes a flush that found the page absent because the
	// holder's eviction (carrying the dirty data) is still in flight.
	evictWait func()
}

func newManager(nd *Node, obj vm.ObjID, sizePages vm.PageIdx, mapping []mesh.NodeID, cli pager.PagerIO) *Manager {
	return &Manager{
		nd: nd, obj: obj, sizePages: sizePages, mapping: mapping, pagerCli: cli,
		store:        make(map[vm.PageIdx][]byte),
		pages:        make(map[vm.PageIdx]*mpage),
		pendingFlush: make(map[uint64]func(flushAck)),
	}
}

func (m *Manager) page(idx vm.PageIdx) *mpage {
	ps := m.pages[idx]
	if ps == nil {
		ps = &mpage{writer: noNode, readers: make(map[mesh.NodeID]bool)}
		m.pages[idx] = ps
	}
	return ps
}

// handleRequest serializes per-page operations: one request is processed at
// a time, the rest queue — the centralized bottleneck the paper measures.
func (m *Manager) handleRequest(req accessReq) {
	ps := m.page(req.Idx)
	if ps.busy {
		ps.queue = append(ps.queue, req)
		return
	}
	ps.busy = true
	m.nd.Ctr.V[sim.CtrMgrRequests]++
	m.stepFlushWriter(req, ps)
}

// stepFlushWriter creates a coherent version at the pager: the writer is
// downgraded to a reader, and — the NMK13 behaviour the paper calls out —
// its dirty contents are written to paging space the first time another
// node requests the page.
func (m *Manager) stepFlushWriter(req accessReq, ps *mpage) {
	w := ps.writer
	if w == noNode {
		m.stepFlushReaders(req, ps)
		return
	}
	m.flush(w, req.Idx, vm.ProtRead, func(ack flushAck) {
		finish := func() {
			ps.writer = noNode
			m.stepFlushReaders(req, ps)
		}
		switch {
		case ack.Present && ack.Dirty:
			// First remote request for a dirty page: write it to paging
			// space before serving (paper §4.1.1). The writer keeps a
			// read copy.
			m.nd.Ctr.V[sim.CtrMgrDirtyToPager]++
			ps.readers[w] = true
			m.pagerOut(req.Idx, ack.Data, finish)
		case ack.Present:
			ps.readers[w] = true
			finish()
		default:
			// Page already gone from the writer: its eviction message is
			// in flight (or processed). Wait for it if the state still
			// says writer.
			if ps.writer == noNode {
				finish()
				return
			}
			ps.evictWait = finish
		}
	})
}

// stepFlushReaders invalidates read copies before a write grant. Flushes
// are pipelined: all sent, then all acks awaited (sender-side send cost
// serializes at the manager's message processor).
func (m *Manager) stepFlushReaders(req accessReq, ps *mpage) {
	if req.Want != vm.ProtWrite {
		m.stepSupply(req, ps)
		return
	}
	var targets []mesh.NodeID
	for r := range ps.readers {
		if r != req.Origin {
			targets = append(targets, r)
		}
	}
	sortNodes(targets)
	if len(targets) == 0 {
		m.stepSupply(req, ps)
		return
	}
	remaining := len(targets)
	for _, r := range targets {
		r := r
		m.flush(r, req.Idx, vm.ProtNone, func(ack flushAck) {
			delete(ps.readers, r)
			remaining--
			if remaining == 0 {
				m.stepSupply(req, ps)
			}
		})
	}
}

// stepSupply gets coherent contents to the origin node and updates state.
func (m *Manager) stepSupply(req accessReq, ps *mpage) {
	finish := func() {
		if req.Want == vm.ProtWrite {
			ps.writer = req.Origin
			ps.readers = make(map[mesh.NodeID]bool)
		} else {
			ps.readers[req.Origin] = true
		}
		ps.busy = false
		if len(ps.queue) > 0 {
			next := ps.queue[0]
			ps.queue = ps.queue[1:]
			m.handleRequest(next)
		}
	}
	if req.Want == vm.ProtWrite && ps.readers[req.Origin] {
		// Upgrade: the origin still holds the contents; no data needed.
		m.nd.Ctr.V[sim.CtrMgrUpgrades]++
		m.send(req.Origin, 0, supplyMsg{Obj: m.obj, Idx: req.Idx, Lock: vm.ProtWrite, NoData: true})
		finish()
		return
	}
	m.pagerIn(req.Idx, func(data []byte, found bool) {
		if found {
			m.send(req.Origin, vm.PageSize, supplyMsg{Obj: m.obj, Idx: req.Idx, Data: data, Lock: req.Want})
		} else {
			m.send(req.Origin, 0, supplyMsg{Obj: m.obj, Idx: req.Idx, Lock: req.Want, Fresh: true})
		}
		finish()
	})
}

// handleFlushAck routes a proxy's flush completion to its continuation.
func (m *Manager) handleFlushAck(ack flushAck) {
	cb, ok := m.pendingFlush[ack.Seq]
	if !ok {
		panic(fmt.Sprintf("xmm: stray flush ack seq %d", ack.Seq))
	}
	delete(m.pendingFlush, ack.Seq)
	cb(ack)
}

// handleEvict processes a node's data_return: dirty contents go to paging
// space; state drops the node; the frame is released with an ack.
func (m *Manager) handleEvict(ev evictMsg) {
	ps := m.page(ev.Idx)
	done := func() {
		if ps.writer == ev.From {
			ps.writer = noNode
		}
		delete(ps.readers, ev.From)
		m.send(ev.From, 0, evictAck{Obj: m.obj, Idx: ev.Idx})
		if w := ps.evictWait; w != nil {
			ps.evictWait = nil
			w()
		}
	}
	if ev.Dirty {
		m.nd.Ctr.V[sim.CtrMgrPageouts]++
		m.pagerOut(ev.Idx, ev.Data, done)
	} else {
		done()
	}
}

// flush sends a lock/flush command to a node and registers the ack
// continuation.
func (m *Manager) flush(to mesh.NodeID, idx vm.PageIdx, newLock vm.Prot, cb func(flushAck)) {
	m.flushSeq++
	m.pendingFlush[m.flushSeq] = cb
	m.nd.Ctr.V[sim.CtrMgrFlushes]++
	m.send(to, 0, flushMsg{Obj: m.obj, Idx: idx, NewLock: newLock, Seq: m.flushSeq})
}

func (m *Manager) send(to mesh.NodeID, payload int, msg interface{}) {
	m.nd.TR.Send(m.nd.Self, to, Proto, payload, msg)
}

func (m *Manager) pagerOut(idx vm.PageIdx, data []byte, cb func()) {
	if m.pagerCli == nil {
		buf := make([]byte, len(data))
		copy(buf, data)
		m.store[idx] = buf
		m.nd.Eng.Schedule(0, cb)
		return
	}
	m.pagerCli.PageOut(m.obj, idx, data, true, cb)
}

func (m *Manager) pagerIn(idx vm.PageIdx, cb func(data []byte, found bool)) {
	if m.pagerCli == nil {
		data, ok := m.store[idx]
		m.nd.Eng.Schedule(0, func() { cb(data, ok) })
		return
	}
	m.pagerCli.PageIn(m.obj, idx, cb)
}

func sortNodes(ns []mesh.NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
