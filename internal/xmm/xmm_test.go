package xmm

import (
	"testing"
	"time"

	"asvm/internal/mesh"
	"asvm/internal/node"
	"asvm/internal/norma"
	"asvm/internal/pager"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/xport"
)

// cluster is a minimal XMM test fixture.
type cluster struct {
	eng   *sim.Engine
	net   *mesh.Network
	tr    xport.Transport
	hw    []*node.Node
	kerns []*vm.Kernel
	xmms  []*Node
}

func newCluster(t *testing.T, n int, memPages int) *cluster {
	t.Helper()
	e := sim.NewEngine()
	net := mesh.New(e, n, mesh.DefaultConfig(n))
	hw := make([]*node.Node, n)
	for i := range hw {
		hw[i] = node.New(e, mesh.NodeID(i))
	}
	tr := norma.New(e, net, hw, norma.DefaultCosts())
	c := &cluster{eng: e, net: net, tr: tr, hw: hw}
	for i := 0; i < n; i++ {
		k := vm.NewKernel(e, mesh.NodeID(i), vm.DefaultCosts(), vm.NewPhysMem(memPages), true)
		c.kerns = append(c.kerns, k)
		c.xmms = append(c.xmms, NewNode(e, k, tr, 16))
	}
	return c
}

// shared sets up a shared object across all nodes and returns per-node
// tasks mapping it at address 0.
func (c *cluster) shared(t *testing.T, sizePages vm.PageIdx) []*vm.Task {
	t.Helper()
	id := vm.ObjID{Node: 0, Seq: 9000}
	objs := SetupShared(id, sizePages, c.xmms, 0, nil)
	tasks := make([]*vm.Task, len(c.xmms))
	for i, x := range c.xmms {
		task := x.K.NewTask("t")
		if _, err := task.Map.MapObject(0, objs[i], 0, sizePages, vm.ProtWrite, vm.InheritShare); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	return tasks
}

// run drives fn on a proc and the engine to completion.
func (c *cluster) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	c.eng.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	c.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestXMMWriteThenRemoteRead(t *testing.T) {
	c := newCluster(t, 4, 0)
	tasks := c.shared(t, 8)
	c.run(t, func(p *sim.Proc) error {
		if err := tasks[1].WriteU64(p, 0, 4242); err != nil {
			return err
		}
		v, err := tasks[2].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 4242 {
			t.Errorf("remote read %d, want 4242", v)
		}
		return nil
	})
	// The NMK13 quirk: the dirty page went through paging space on the
	// first remote request.
	if c.xmms[0].Ctr.Get("mgr_dirty_to_pager") != 1 {
		t.Errorf("dirty-to-pager = %d, want 1", c.xmms[0].Ctr.Get("mgr_dirty_to_pager"))
	}
}

func TestXMMSingleWriterInvariant(t *testing.T) {
	c := newCluster(t, 4, 0)
	tasks := c.shared(t, 4)
	c.run(t, func(p *sim.Proc) error {
		// Several nodes read, then one writes: all read copies must be
		// flushed before the write is granted.
		if err := tasks[0].WriteU64(p, 0, 1); err != nil {
			return err
		}
		for i := 1; i < 4; i++ {
			if _, err := tasks[i].ReadU64(p, 0); err != nil {
				return err
			}
		}
		if err := tasks[3].WriteU64(p, 0, 2); err != nil {
			return err
		}
		// After the write, no other node may still have the page.
		for i := 0; i < 3; i++ {
			if c.kerns[i].Object(vm.ObjID{Node: 0, Seq: 9000}).Resident(0) {
				t.Errorf("node %d still has the page after remote write", i)
			}
		}
		v, err := tasks[1].ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("read %d after write, want 2", v)
		}
		return nil
	})
}

func TestXMMSequentialConsistencySweep(t *testing.T) {
	c := newCluster(t, 4, 0)
	tasks := c.shared(t, 2)
	c.run(t, func(p *sim.Proc) error {
		// Ping-pong increments across all nodes; every node must always
		// see the latest value.
		want := uint64(0)
		for round := 0; round < 12; round++ {
			w := round % 4
			v, err := tasks[w].ReadU64(p, 8)
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("round %d: node %d read %d, want %d", round, w, v, want)
			}
			want++
			if err := tasks[w].WriteU64(p, 8, want); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestXMMUpgradeCheaperThanFullWrite(t *testing.T) {
	c := newCluster(t, 3, 0)
	tasks := c.shared(t, 4)
	var fullWrite, upgrade time.Duration
	// Matched scenarios: read copies at nodes {1, 2} (the writer's
	// downgraded copy plus one reader); the faulter either holds one of
	// them (upgrade) or none (full write fault).
	setup := func(p *sim.Proc) error {
		if err := tasks[1].WriteU64(p, 0, 1); err != nil {
			return err
		}
		_, err := tasks[2].ReadU64(p, 0)
		return err
	}
	c.run(t, func(p *sim.Proc) error {
		if err := setup(p); err != nil {
			return err
		}
		// Upgrade: node 2 already holds a read copy.
		t0 := p.Now()
		if err := tasks[2].WriteU64(p, 0, 2); err != nil {
			return err
		}
		upgrade = p.Now() - t0
		// Rebuild the same pre-state with copies at {1, 2}.
		if _, err := tasks[1].ReadU64(p, 0); err != nil {
			return err
		}
		// Full write fault: node 0 holds nothing.
		t0 = p.Now()
		if err := tasks[0].WriteU64(p, 0, 3); err != nil {
			return err
		}
		fullWrite = p.Now() - t0
		return nil
	})
	if upgrade >= fullWrite {
		t.Fatalf("upgrade (%v) not cheaper than full write fault (%v)", upgrade, fullWrite)
	}
	if c.xmms[0].Ctr.Get("mgr_upgrades") == 0 {
		t.Fatal("no upgrade recorded")
	}
}

func TestXMMWithRealPagerBackingStore(t *testing.T) {
	c := newCluster(t, 4, 0)
	c.hw[0].AttachDisk(c.eng, 5*time.Millisecond, 5e6)
	srv := pager.NewServer(c.eng, c.tr, 0, c.hw[0].Disk, pager.DefaultCosts(), "dp", true)
	id := vm.ObjID{Node: 0, Seq: 7}
	objs := SetupShared(id, 8, c.xmms, 0, srv)
	t1 := c.xmms[1].K.NewTask("t1")
	t1.Map.MapObject(0, objs[1], 0, 8, vm.ProtWrite, vm.InheritShare)
	t2 := c.xmms[2].K.NewTask("t2")
	t2.Map.MapObject(0, objs[2], 0, 8, vm.ProtWrite, vm.InheritShare)
	c.run(t, func(p *sim.Proc) error {
		if err := t1.WriteU64(p, 0, 77); err != nil {
			return err
		}
		v, err := t2.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 77 {
			t.Errorf("read %d, want 77", v)
		}
		return nil
	})
	if c.hw[0].Disk.Writes == 0 {
		t.Fatal("dirty page never hit the paging-space disk")
	}
	if !srv.Has(id, 0) {
		t.Fatal("pager has no copy of the flushed page")
	}
}

func TestXMMEvictionRoundTrip(t *testing.T) {
	c := newCluster(t, 2, 6)
	tasks := c.shared(t, 16)
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 16; i++ {
			if err := tasks[1].WriteU64(p, vm.Addr(i*vm.PageSize), uint64(100+i)); err != nil {
				return err
			}
		}
		for i := 0; i < 16; i++ {
			v, err := tasks[1].ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(100+i) {
				t.Errorf("page %d = %d, want %d", i, v, 100+i)
			}
		}
		return nil
	})
	if c.kerns[1].Mem.ResidentPages > 6 {
		t.Fatalf("node 1 resident = %d", c.kerns[1].Mem.ResidentPages)
	}
	if c.xmms[0].Ctr.Get("mgr_pageouts") == 0 {
		t.Fatal("no dirty pageouts reached the manager")
	}
}

func TestXMMManagerFootprint(t *testing.T) {
	c := newCluster(t, 8, 0)
	c.shared(t, 1000)
	// 1 byte per page per node: 1000 * 8.
	if fp := c.xmms[0].Footprint(vm.ObjID{Node: 0, Seq: 9000}); fp != 8000 {
		t.Fatalf("footprint = %d, want 8000", fp)
	}
	if fp := c.xmms[1].Footprint(vm.ObjID{Node: 0, Seq: 9000}); fp != 0 {
		t.Fatalf("non-manager footprint = %d", fp)
	}
}

func TestXMMRemoteForkReadsParentData(t *testing.T) {
	c := newCluster(t, 3, 0)
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(16)
	parent.Map.MapObject(0, region, 0, 16, vm.ProtWrite, vm.InheritCopy)
	c.run(t, func(p *sim.Proc) error {
		for i := 0; i < 16; i++ {
			if err := parent.WriteU64(p, vm.Addr(i*vm.PageSize), uint64(i*7)); err != nil {
				return err
			}
		}
		child, err := RemoteFork(parent, c.xmms[0], c.xmms[1], "child")
		if err != nil {
			return err
		}
		// Parent writes after the fork must not be visible to the child.
		if err := parent.WriteU64(p, 0, 999999); err != nil {
			return err
		}
		for i := 0; i < 16; i++ {
			v, err := child.ReadU64(p, vm.Addr(i*vm.PageSize))
			if err != nil {
				return err
			}
			if v != uint64(i*7) {
				t.Errorf("child page %d = %d, want %d", i, v, i*7)
			}
		}
		// Child writes stay in the child.
		if err := child.WriteU64(p, 8, 123); err != nil {
			return err
		}
		pv, err := parent.ReadU64(p, 8)
		if err != nil {
			return err
		}
		if pv != 0 {
			t.Errorf("parent saw child write: %d", pv)
		}
		return nil
	})
}

func TestXMMRemoteForkChain(t *testing.T) {
	c := newCluster(t, 4, 0)
	parent := c.kerns[0].NewTask("parent")
	region := c.kerns[0].NewAnonymous(4)
	parent.Map.MapObject(0, region, 0, 4, vm.ProtWrite, vm.InheritCopy)
	c.run(t, func(p *sim.Proc) error {
		if err := parent.WriteU64(p, 0, 31337); err != nil {
			return err
		}
		// Chain 0 -> 1 -> 2 -> 3.
		cur := parent
		for i := 1; i < 4; i++ {
			child, err := RemoteFork(cur, c.xmms[i-1], c.xmms[i], "child")
			if err != nil {
				return err
			}
			cur = child
		}
		v, err := cur.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if v != 31337 {
			t.Errorf("chain end read %d, want 31337", v)
		}
		return nil
	})
	// The fault should have traversed internal pagers on nodes 2 and 1 and 0.
	total := int64(0)
	for _, x := range c.xmms {
		total += x.Ctr.Get("copy_pager_faults")
	}
	if total < 3 {
		t.Fatalf("copy pager faults = %d, want >= 3 (one per hop)", total)
	}
}

func TestXMMChainLatencyGrowsLinearly(t *testing.T) {
	// Fault latency across a copy chain should be lb + n*la (paper Fig 11).
	lat := func(hops int) time.Duration {
		c := newCluster(t, hops+1, 0)
		parent := c.kerns[0].NewTask("parent")
		region := c.kerns[0].NewAnonymous(1)
		parent.Map.MapObject(0, region, 0, 1, vm.ProtWrite, vm.InheritCopy)
		var d time.Duration
		c.run(t, func(p *sim.Proc) error {
			if err := parent.WriteU64(p, 0, 5); err != nil {
				return err
			}
			cur := parent
			for i := 1; i <= hops; i++ {
				child, err := RemoteFork(cur, c.xmms[i-1], c.xmms[i], "child")
				if err != nil {
					return err
				}
				cur = child
			}
			t0 := p.Now()
			if _, err := cur.ReadU64(p, 0); err != nil {
				return err
			}
			d = p.Now() - t0
			return nil
		})
		return d
	}
	l1, l2, l4 := lat(1), lat(2), lat(4)
	if l2 <= l1 || l4 <= l2 {
		t.Fatalf("latency not increasing: %v %v %v", l1, l2, l4)
	}
	// Roughly linear: the per-hop increments should be similar.
	inc1 := l2 - l1
	inc2 := (l4 - l2) / 2
	ratio := float64(inc1) / float64(inc2)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("per-hop cost not linear: %v vs %v", inc1, inc2)
	}
}
