package xmm

import (
	"testing"

	"asvm/internal/sim"
	"asvm/internal/vm"
)

// The paper (§3.1, "Asynchronous State Transitions") motivates ASVM's
// design with exactly this failure: XMM's copy-pager threads block while
// resolving faults, so a copy chain that crosses the same node twice can
// exhaust the pool and deadlock. These tests construct that chain
// (0 -> 1 -> 0 -> 1) and drive concurrent faults through it.

// buildZigzagChain forks 0 -> 1 -> 0 -> 1, returning the final task (on
// node 1) whose faults traverse copy pagers on both nodes twice.
func buildZigzagChain(t *testing.T, c *cluster, pages vm.PageIdx) *vm.Task {
	t.Helper()
	parent := c.kerns[0].NewTask("gen0")
	region := c.kerns[0].NewAnonymous(pages)
	if _, err := parent.Map.MapObject(0, region, 0, pages, vm.ProtWrite, vm.InheritCopy); err != nil {
		t.Fatal(err)
	}
	var leaf *vm.Task
	c.run(t, func(p *sim.Proc) error {
		for i := vm.PageIdx(0); i < pages; i++ {
			if err := parent.WriteU64(p, vm.Addr(i)*vm.PageSize, uint64(i)+7); err != nil {
				return err
			}
		}
		cur := parent
		for hop, dst := range []int{1, 0, 1} {
			child, err := RemoteFork(cur, c.xmms[int(cur.Kernel.Node)], c.xmms[dst], "gen")
			if err != nil {
				return err
			}
			cur = child
			_ = hop
		}
		leaf = cur
		return nil
	})
	return leaf
}

func TestXMMZigzagChainSequentialFaultsSucceed(t *testing.T) {
	// One fault at a time re-enters node 0's pool while its own first
	// thread is still... no: sequential faults release each thread before
	// the next hop needs one? They do NOT — a single fault holds a thread
	// on every node it crosses simultaneously. With 2 threads per node a
	// single zigzag fault (two visits to each node) just fits.
	c := newCluster(t, 2, 0)
	for i := range c.xmms {
		c.xmms[i].CopyThreads = sim.NewSemaphore(c.eng, 2)
	}
	leaf := buildZigzagChain(t, c, 4)
	c.run(t, func(p *sim.Proc) error {
		for i := vm.PageIdx(0); i < 4; i++ {
			v, err := leaf.ReadU64(p, vm.Addr(i)*vm.PageSize)
			if err != nil {
				return err
			}
			if v != uint64(i)+7 {
				t.Errorf("page %d = %d", i, v)
			}
		}
		return nil
	})
}

func TestXMMZigzagChainConcurrentFaultsDeadlockOnTinyPool(t *testing.T) {
	// Two concurrent faults, one thread per node: each fault grabs the
	// node-0 thread (or node-1 thread) the other needs for its next hop —
	// circular wait, exactly the hazard the paper describes. The
	// simulation detects it as live procs with no runnable events.
	c := newCluster(t, 2, 0)
	for i := range c.xmms {
		c.xmms[i].CopyThreads = sim.NewSemaphore(c.eng, 1)
	}
	leaf := buildZigzagChain(t, c, 4)
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		c.eng.Spawn("faulter", func(p *sim.Proc) {
			if _, err := leaf.ReadU64(p, vm.Addr(i)*vm.PageSize); err == nil {
				done++
			}
		})
	}
	c.eng.Run()
	if done == 2 {
		t.Skip("faults interleaved without overlapping thread demand; deadlock needs the overlap")
	}
	if c.eng.LiveProcs() == 0 {
		t.Fatalf("faults failed but no procs blocked (done=%d)", done)
	}
	// Deadlock confirmed: blocked procs with an empty event queue.
	if c.eng.Pending() != 0 {
		t.Fatalf("events still pending; not a true deadlock")
	}
}

func TestXMMZigzagChainConcurrentFaultsSucceedWithBigPool(t *testing.T) {
	// The same concurrent faults complete when the pool is large — the
	// NMK13 workaround of provisioning many threads.
	c := newCluster(t, 2, 0)
	leaf := buildZigzagChain(t, c, 4)
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		c.eng.Spawn("faulter", func(p *sim.Proc) {
			if _, err := leaf.ReadU64(p, vm.Addr(i)*vm.PageSize); err == nil {
				done++
			}
		})
	}
	c.eng.Run()
	if done != 2 {
		t.Fatalf("done = %d with a 16-thread pool", done)
	}
	if c.eng.LiveProcs() != 0 {
		t.Fatal("procs leaked")
	}
}
