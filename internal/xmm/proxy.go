package xmm

import (
	"asvm/internal/mesh"
	"asvm/internal/sim"
	"asvm/internal/vm"
)

// Proxy is the XMM representation of a memory object on a node that maps
// it but does not manage it: it forwards the local VM system's EMMI
// requests to the centralized manager and executes the manager's commands
// against the local kernel. (The manager's own node also runs a proxy; its
// traffic loops back through the local transport, modelling local Mach IPC.)
type Proxy struct {
	nd      *Node
	o       *vm.Object
	obj     vm.ObjID
	mgrNode mesh.NodeID

	// capture diverts the kernel's synchronous DataReturn during a
	// manager-commanded flush, so the data rides the flushAck instead of a
	// separate eviction message.
	capturing    bool
	capturedData []byte
	capturedDirt bool
}

// DataRequest implements vm.MemoryManager.
func (p *Proxy) DataRequest(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	p.sendReq(idx, desired)
}

// DataUnlock implements vm.MemoryManager.
func (p *Proxy) DataUnlock(o *vm.Object, idx vm.PageIdx, desired vm.Prot) {
	p.sendReq(idx, desired)
}

func (p *Proxy) sendReq(idx vm.PageIdx, want vm.Prot) {
	p.nd.Ctr.V[sim.CtrProxyRequests]++
	p.nd.TR.Send(p.nd.Self, p.mgrNode, Proto, 0,
		accessReq{Obj: p.obj, Idx: idx, Want: want, Origin: p.nd.Self})
}

// DataReturn implements vm.MemoryManager. During a manager-driven flush the
// data is captured into the pending flushAck; otherwise this is a
// node-initiated eviction that must round-trip to the manager.
func (p *Proxy) DataReturn(o *vm.Object, idx vm.PageIdx, data []byte, dirty, kept bool) {
	if p.capturing {
		p.capturedData = data
		p.capturedDirt = dirty
		return
	}
	payload := 0
	if dirty {
		payload = vm.PageSize
	}
	p.nd.Ctr.V[sim.CtrProxyEvicts]++
	p.nd.TR.Send(p.nd.Self, p.mgrNode, Proto, payload,
		evictMsg{Obj: p.obj, Idx: idx, Dirty: dirty, Data: data, From: p.nd.Self})
}

// Terminate implements vm.MemoryManager.
func (p *Proxy) Terminate(o *vm.Object) {}

// handleSupply executes a manager grant against the local kernel.
func (p *Proxy) handleSupply(msg supplyMsg) {
	switch {
	case msg.NoData:
		p.nd.K.LockGrant(p.o, msg.Idx, msg.Lock)
	case msg.Fresh:
		p.nd.K.DataUnavailable(p.o, msg.Idx, msg.Lock)
	default:
		p.nd.K.DataSupply(p.o, msg.Idx, msg.Data, msg.Lock, false)
	}
}

// handleFlush executes a manager lock/flush command and acks with any
// dirty contents.
func (p *Proxy) handleFlush(msg flushMsg) {
	p.capturing = true
	p.capturedData = nil
	p.capturedDirt = false
	var present bool
	p.nd.K.LockRequest(p.o, msg.Idx, msg.NewLock, false, func(ok bool) { present = ok })
	p.capturing = false
	payload := 0
	if p.capturedDirt {
		payload = vm.PageSize
	}
	p.nd.TR.Send(p.nd.Self, p.mgrNode, Proto, payload, flushAck{
		Obj: p.obj, Idx: msg.Idx, Seq: msg.Seq,
		Present: present, Dirty: p.capturedDirt, Data: p.capturedData,
		From: p.nd.Self,
	})
}

// handleEvictAck frees the local frame once the manager has secured the
// data.
func (p *Proxy) handleEvictAck(msg evictAck) {
	p.nd.K.RemovePage(p.o, msg.Idx)
}

var _ vm.MemoryManager = (*Proxy)(nil)
