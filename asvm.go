// Package asvm is a simulation-faithful reproduction of the Advanced
// Shared Virtual Memory system from "A New Approach to Distributed Memory
// Management in the Mach Microkernel" (Zeisset, Tritscher, Mairandres;
// USENIX Annual Technical Conference, January 1996), together with the
// NMK13 XMM baseline it was measured against and the simulated
// Paragon-class multicomputer both run on.
//
// This root package is the public facade: it re-exports the types needed
// to assemble a machine, share memory across nodes, fork tasks remotely,
// and run the paper's workloads. The implementation lives in the internal
// packages (see DESIGN.md for the inventory):
//
//	internal/sim      deterministic discrete-event engine
//	internal/mesh     2-D wormhole mesh interconnect
//	internal/node     message processors and disks
//	internal/norma    NORMA-IPC transport model (XMM's transport)
//	internal/sts      SVM Transport Service (ASVM's transport)
//	internal/vm       Mach VM: objects, shadow/copy chains, EMMI
//	internal/pager    default pager and file pager on I/O nodes
//	internal/xmm      the centralized-manager baseline
//	internal/asvm     the paper's contribution
//	internal/machine  cluster assembly and calibration constants
//	internal/workload the paper's three benchmark workloads
//	internal/exp      table/figure regeneration harness
//
// Quick start:
//
//	params := asvm.DefaultParams(4)
//	params.TrackData = true
//	cluster := asvm.New(params)
//	region := cluster.NewSharedRegion("r", 8, []int{0, 1, 2, 3})
//	task, _ := cluster.TaskOn(0, "t", region, 0)
//	cluster.Spawn("main", func(p *asvm.Proc) {
//		task.WriteU64(p, 0, 42)
//	})
//	cluster.Run()
package asvm

import (
	"asvm/internal/machine"
	"asvm/internal/sim"
	"asvm/internal/vm"
	"asvm/internal/workload"
)

// Re-exported machine assembly types.
type (
	// Params configures a simulated multicomputer; see machine.Params.
	Params = machine.Params
	// Cluster is an assembled machine.
	Cluster = machine.Cluster
	// Region is a shared memory object mapped across nodes.
	Region = machine.Region
	// System selects the memory system under test.
	System = machine.System
	// Proc is a simulated sequential process.
	Proc = sim.Proc
	// Task is a user task with an address space.
	Task = vm.Task
)

// The two memory systems the paper compares.
const (
	SysASVM = machine.SysASVM
	SysXMM  = machine.SysXMM
)

// PageSize is the simulated machine's page size (8 KB, like the Paragon).
const PageSize = vm.PageSize

// DefaultParams returns the calibrated configuration for n nodes.
func DefaultParams(n int) Params { return machine.DefaultParams(n) }

// New assembles a cluster.
func New(p Params) *Cluster { return machine.New(p) }

// EM3DConfig parameterizes the EM3D benchmark application.
type EM3DConfig = workload.EM3DConfig

// DefaultEM3D returns the paper's EM3D configuration for a problem size
// and node count.
func DefaultEM3D(cells, nodes, iters int) EM3DConfig {
	return workload.DefaultEM3D(cells, nodes, iters)
}

// RunEM3D executes the EM3D benchmark on a fresh cluster.
var RunEM3D = workload.RunEM3D
