module asvm

go 1.22
